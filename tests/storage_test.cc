// Tests for the storage substrates: virtual disk, disk server, bullet file
// server, and NVRAM.
#include <gtest/gtest.h>

#include "bullet/bullet.h"
#include "disk/disk_server.h"
#include "disk/vdisk.h"
#include "nvram/nvram.h"

namespace amoeba {
namespace {

using disk::VirtualDisk;
using net::Cluster;
using net::Machine;
using net::Port;

constexpr Port kBulletPort{200};
constexpr Port kDiskPort{201};

struct StorageFixture : ::testing::Test {
  sim::Simulator sim{21};
  Cluster cluster{sim};
};

TEST_F(StorageFixture, DiskWriteReadRoundTrip) {
  Machine& m = cluster.add_machine("m");
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", [&] {
      return std::make_unique<VirtualDisk>(sim, "d");
    });
    ASSERT_TRUE(d.write_block(3, to_buffer("block3")).is_ok());
    got = d.read_block(3);
  });
  sim.run_until(sim::sec(1));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(*got), "block3");
}

TEST_F(StorageFixture, DiskOpsTakeConfiguredTime) {
  Machine& m = cluster.add_machine("m");
  sim::Time w = 0, r = 0;
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", [&] {
      return std::make_unique<VirtualDisk>(sim, "d");
    });
    sim::Time t0 = sim.now();
    (void)d.write_block(0, to_buffer("x"));
    w = sim.now() - t0;
    t0 = sim.now();
    (void)d.read_block(0);
    r = sim.now() - t0;
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(w, sim::msec(40));
  EXPECT_EQ(r, sim::msec(25));
}

TEST_F(StorageFixture, DiskContentsSurviveCrash) {
  Machine& m = cluster.add_machine("m");
  auto make = [&] { return std::make_unique<VirtualDisk>(sim, "d"); };
  m.spawn("p", [&] {
    (void)m.persistent<VirtualDisk>("d", make).write_block(1, to_buffer("v"));
  });
  sim.run_until(sim::msec(100));
  cluster.crash(m.id());
  cluster.restart(m.id());
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  m.spawn("p2", [&] { got = m.persistent<VirtualDisk>("d", make).read_block(1); });
  sim.run_until(sim::msec(300));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(*got), "v");
}

TEST_F(StorageFixture, CrashMidWriteLeavesOldContents) {
  Machine& m = cluster.add_machine("m");
  auto make = [&] { return std::make_unique<VirtualDisk>(sim, "d"); };
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", make);
    (void)d.write_block(0, to_buffer("old"));
    (void)d.write_block(0, to_buffer("new"));  // killed mid-op
  });
  sim.spawn("chaos", [&] {
    sim.sleep_for(sim::msec(60));  // during the second write (40..80ms)
    cluster.crash(m.id());
  });
  sim.run_until(sim::msec(200));
  cluster.restart(m.id());
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  m.spawn("p2", [&] { got = m.persistent<VirtualDisk>("d", make).read_block(0); });
  sim.run_until(sim::msec(400));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(to_string(*got), "old");
}

TEST_F(StorageFixture, FailedDiskReturnsIoError) {
  Machine& m = cluster.add_machine("m");
  Status st = Status::ok();
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", [&] {
      return std::make_unique<VirtualDisk>(sim, "d");
    });
    d.fail_permanently();
    st = d.write_block(0, to_buffer("x"));
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(st.code(), Errc::io_error);
}

TEST_F(StorageFixture, TransientFaultProbFailsWrites) {
  Machine& m = cluster.add_machine("m");
  Status st = Status::ok();
  Status recovered = Status::error(Errc::internal, "unset");
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", [&] {
      return std::make_unique<VirtualDisk>(sim, "d");
    });
    d.set_fault_prob(1.0);
    st = d.write_block(0, to_buffer("x"));
    d.set_fault_prob(0.0);
    recovered = d.write_block(0, to_buffer("x"));  // transient: clears
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(st.code(), Errc::io_error);
  EXPECT_TRUE(recovered.is_ok()) << recovered.to_string();
}

TEST_F(StorageFixture, TornWritePersistsOnlyAPrefix) {
  Machine& m = cluster.add_machine("m");
  auto make = [&] { return std::make_unique<VirtualDisk>(sim, "d"); };
  const std::string next = "REPLACEMENT-CONTENT";
  m.spawn("p", [&] {
    auto& d = m.persistent<VirtualDisk>("d", make);
    (void)d.write_block(0, to_buffer("old"));
    d.set_torn_writes(true);
    (void)d.write_block(0, to_buffer(next));  // killed mid-op
  });
  sim.spawn("chaos", [&] {
    sim.sleep_for(sim::msec(60));  // during the second write (40..80ms)
    cluster.crash(m.id());
  });
  sim.run_until(sim::msec(200));
  cluster.restart(m.id());
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  std::uint64_t torn = 0;
  m.spawn("p2", [&] {
    auto& d = m.persistent<VirtualDisk>("d", make);
    got = d.read_block(0);
    torn = d.torn_write_count();
  });
  sim.run_until(sim::msec(400));
  ASSERT_TRUE(got.is_ok());
  // Unlike the default all-or-nothing crash semantics, the torn write
  // replaced the block with a strict prefix of the new contents.
  EXPECT_EQ(torn, 1u);
  EXPECT_LT(got->size(), next.size());
  EXPECT_EQ(to_string(*got), next.substr(0, got->size()));
}

TEST_F(StorageFixture, DiskServerRemoteReadWrite) {
  Machine& storage = cluster.add_machine("storage");
  Machine& client = cluster.add_machine("client");
  storage.install_service("disk", [&](Machine& mm) {
    auto& d = mm.persistent<VirtualDisk>("d", [&mm] {
      return std::make_unique<VirtualDisk>(mm.sim(), "d");
    });
    disk::DiskServer server(mm, kDiskPort, d, 64);
    mm.sim().sleep_for(sim::kTimeMax / 2);
  });
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  Status wst = Status::ok();
  client.spawn("c", [&] {
    rpc::RpcClient rpc(client);
    disk::DiskClient dc(rpc, kDiskPort);
    wst = dc.write_block(5, to_buffer("remote"));
    got = dc.read_block(5);
  });
  sim.run_until(sim::sec(2));
  ASSERT_TRUE(wst.is_ok()) << wst.to_string();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(to_string(*got), "remote");
}

TEST_F(StorageFixture, DiskServerRejectsOutOfPartition) {
  Machine& storage = cluster.add_machine("storage");
  Machine& client = cluster.add_machine("client");
  storage.install_service("disk", [&](Machine& mm) {
    auto& d = mm.persistent<VirtualDisk>("d", [&mm] {
      return std::make_unique<VirtualDisk>(mm.sim(), "d");
    });
    disk::DiskServer server(mm, kDiskPort, d, 8);  // blocks 0..7 only
    mm.sim().sleep_for(sim::kTimeMax / 2);
  });
  Status st = Status::ok();
  client.spawn("c", [&] {
    rpc::RpcClient rpc(client);
    disk::DiskClient dc(rpc, kDiskPort);
    st = dc.write_block(9, to_buffer("x"));
  });
  sim.run_until(sim::sec(2));
  EXPECT_EQ(st.code(), Errc::io_error);
}

// ------------------------------------------------------------------ Bullet

void start_bullet(Machine& m, Port port = kBulletPort) {
  m.install_service("bullet", [port](Machine& mm) {
    auto& d = mm.persistent<VirtualDisk>("disk", [&mm] {
      return std::make_unique<VirtualDisk>(mm.sim(), "disk");
    });
    bullet::BulletServer server(mm, port, d);
    mm.sim().sleep_for(sim::kTimeMax / 2);
  });
}

TEST_F(StorageFixture, BulletCreateReadDelete) {
  Machine& s = cluster.add_machine("bullet");
  Machine& c = cluster.add_machine("client");
  start_bullet(s);
  Status final_read = Status::ok();
  std::string content;
  c.spawn("c", [&] {
    rpc::RpcClient rpc(c);
    bullet::BulletClient bc(rpc, kBulletPort);
    auto cap = bc.create(to_buffer("file contents"));
    ASSERT_TRUE(cap.is_ok()) << cap.status().to_string();
    auto data = bc.read(*cap);
    ASSERT_TRUE(data.is_ok());
    content = to_string(*data);
    ASSERT_TRUE(bc.del(*cap).is_ok());
    final_read = bc.read(*cap).status();
  });
  sim.run_until(sim::sec(2));
  EXPECT_EQ(content, "file contents");
  EXPECT_EQ(final_read.code(), Errc::not_found);
}

TEST_F(StorageFixture, BulletRejectsForgedCapability) {
  Machine& s = cluster.add_machine("bullet");
  Machine& c = cluster.add_machine("client");
  start_bullet(s);
  Status read_st = Status::ok(), del_st = Status::ok();
  c.spawn("c", [&] {
    rpc::RpcClient rpc(c);
    bullet::BulletClient bc(rpc, kBulletPort);
    auto cap = bc.create(to_buffer("secret"));
    ASSERT_TRUE(cap.is_ok());
    cap::Capability forged = *cap;
    forged.check ^= 0x1;
    read_st = bc.read(forged).status();
    del_st = bc.del(forged);
  });
  sim.run_until(sim::sec(2));
  EXPECT_EQ(read_st.code(), Errc::bad_capability);
  EXPECT_EQ(del_st.code(), Errc::bad_capability);
}

TEST_F(StorageFixture, BulletFilesSurviveCrash) {
  Machine& s = cluster.add_machine("bullet");
  Machine& c = cluster.add_machine("client");
  start_bullet(s);
  Result<cap::Capability> cap{Status::error(Errc::internal, "unset")};
  c.spawn("w", [&] {
    rpc::RpcClient rpc(c);
    bullet::BulletClient bc(rpc, kBulletPort);
    cap = bc.create(to_buffer("durable"));
  });
  sim.run_until(sim::sec(1));
  ASSERT_TRUE(cap.is_ok());
  cluster.crash(s.id());
  cluster.restart(s.id());
  Result<Buffer> got{Status::error(Errc::internal, "unset")};
  c.spawn("r", [&] {
    rpc::RpcClient rpc(c);
    bullet::BulletClient bc(rpc, kBulletPort);
    got = bc.read(*cap);
  });
  sim.run_until(sim::sec(3));
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(to_string(*got), "durable");
}

TEST_F(StorageFixture, BulletCreateCostsOneDiskWritePerBlock) {
  Machine& s = cluster.add_machine("bullet");
  Machine& c = cluster.add_machine("client");
  start_bullet(s);
  std::uint64_t writes_small = 0, writes_big = 0;
  c.spawn("c", [&] {
    rpc::RpcClient rpc(c);
    bullet::BulletClient bc(rpc, kBulletPort);
    auto& d = s.persistent<VirtualDisk>("disk", [&] {
      return std::make_unique<VirtualDisk>(sim, "disk");
    });
    d.reset_stats();
    (void)bc.create(to_buffer("small"));
    writes_small = d.writes();
    d.reset_stats();
    (void)bc.create(Buffer(3000, 1));  // 3 blocks
    writes_big = d.writes();
  });
  sim.run_until(sim::sec(2));
  EXPECT_EQ(writes_small, 1u);
  EXPECT_EQ(writes_big, 3u);
}

// ------------------------------------------------------------------- NVRAM

TEST_F(StorageFixture, NvramAppendAndReplay) {
  Machine& m = cluster.add_machine("m");
  std::vector<std::string> replayed;
  m.spawn("p", [&] {
    auto& nv = m.persistent<nvram::Nvram>(
        "nv", [&] { return std::make_unique<nvram::Nvram>(sim); });
    (void)nv.append(1, to_buffer("rec1"));
    (void)nv.append(2, to_buffer("rec2"));
    for (const auto& rec : nv.records()) {
      replayed.push_back(to_string(rec.data));
    }
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(replayed, (std::vector<std::string>{"rec1", "rec2"}));
}

TEST_F(StorageFixture, NvramSurvivesCrash) {
  Machine& m = cluster.add_machine("m");
  auto make = [&] { return std::make_unique<nvram::Nvram>(sim); };
  m.spawn("p", [&] {
    (void)m.persistent<nvram::Nvram>("nv", make).append(7, to_buffer("keep"));
  });
  sim.run_until(sim::msec(10));
  cluster.crash(m.id());
  cluster.restart(m.id());
  std::size_t count = 0;
  std::string data;
  m.spawn("p2", [&] {
    auto& nv = m.persistent<nvram::Nvram>("nv", make);
    count = nv.record_count();
    if (count > 0) data = to_string(nv.records().front().data);
  });
  sim.run_until(sim::msec(20));
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(data, "keep");
}

TEST_F(StorageFixture, NvramFullReportsError) {
  Machine& m = cluster.add_machine("m");
  Status st = Status::ok();
  m.spawn("p", [&] {
    nvram::NvramConfig cfg;
    cfg.capacity_bytes = 256;
    nvram::Nvram nv(sim, cfg);
    Buffer big(100, 0);
    ASSERT_TRUE(nv.append(1, big).is_ok());
    ASSERT_TRUE(nv.append(2, big).is_ok());
    st = nv.append(3, big).status();  // 3*116 > 256
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(st.code(), Errc::full);
}

TEST_F(StorageFixture, NvramCancelByIdAndTag) {
  Machine& m = cluster.add_machine("m");
  m.spawn("p", [&] {
    nvram::Nvram nv(sim);
    auto id1 = nv.append(10, to_buffer("a"));
    (void)nv.append(10, to_buffer("b"));
    (void)nv.append(11, to_buffer("c"));
    ASSERT_TRUE(id1.is_ok());
    EXPECT_TRUE(nv.cancel(*id1));
    EXPECT_FALSE(nv.cancel(*id1));  // already gone
    EXPECT_EQ(nv.cancel_tag(10), 1u);
    EXPECT_EQ(nv.record_count(), 1u);
    EXPECT_EQ(to_string(nv.front()->data), "c");
    // Cancelling frees space.
    EXPECT_EQ(nv.cancels(), 2u);
  });
  sim.run_until(sim::sec(1));
}

TEST_F(StorageFixture, NvramWritesAreFast) {
  Machine& m = cluster.add_machine("m");
  sim::Time took = -1;
  m.spawn("p", [&] {
    nvram::Nvram nv(sim);
    sim::Time t0 = sim.now();
    (void)nv.append(1, to_buffer("x"));
    took = sim.now() - t0;
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(took, sim::usec(100));
}

TEST_F(StorageFixture, NvramFifoConsumption) {
  Machine& m = cluster.add_machine("m");
  std::vector<std::string> order;
  m.spawn("p", [&] {
    nvram::Nvram nv(sim);
    (void)nv.append(1, to_buffer("first"));
    (void)nv.append(2, to_buffer("second"));
    while (const auto* rec = nv.front()) {
      order.push_back(to_string(rec->data));
      nv.pop_front();
    }
    EXPECT_TRUE(nv.empty());
    EXPECT_EQ(nv.used_bytes(), 0u);
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

}  // namespace
}  // namespace amoeba

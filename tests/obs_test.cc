// The observability layer: metrics registry, trace ring, JSON writer, and
// the paper's cost model asserted through the new per-layer counters
// (Sec. 3.1: one quiet-network RPC = 3 packets; one sequencer-origin group
// send = 3 data packets; an NVRAM-mode append touches NVRAM, not disk).
// Also the headline warmup bug: per-op counts from a measurement window
// must not depend on how much warmup traffic preceded the window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dir/client.h"
#include "group/group.h"
#include "harness/workload.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/rpc.h"

// Allocation probe for the hot-path tests: the replacement operator new
// counts while armed, then delegates. Link-time replacement covers the
// whole test binary, so arm it only around the section under test.
namespace {
std::size_t g_alloc_count = 0;
bool g_count_allocs = false;
}  // namespace

// GCC flags free() on new'ed pointers without seeing that the replacement
// operator new below is itself malloc-backed — a false positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  if (g_count_allocs) ++g_alloc_count;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace amoeba {
namespace {

// ---------------------------------------------------------------- Metrics

TEST(Metrics, CounterRefsAreStableAndSnapshotsDelta) {
  obs::Metrics m;
  std::uint64_t& a = m.counter("net", "wire");
  a += 3;
  m.add("net", "wire", 2);
  m.counter("rpc", "packets") += 7;
  const obs::Metrics::Snapshot s1 = m.snapshot();
  EXPECT_EQ(s1.at("net.wire"), 5u);
  EXPECT_EQ(s1.at("rpc.packets"), 7u);

  a += 1;
  const obs::Metrics::Snapshot d = obs::Metrics::delta(m.snapshot(), s1);
  EXPECT_EQ(d.size(), 1u);  // zero deltas are dropped
  EXPECT_EQ(d.at("net.wire"), 1u);
}

TEST(Metrics, ResetZeroesValuesButKeepsCachedRefs) {
  obs::Metrics m;
  std::uint64_t& a = m.counter("disk", "writes");
  a = 9;
  m.observe("disk", "write_ms", 1.5);
  m.reset();
  EXPECT_EQ(m.snapshot().at("disk.writes"), 0u);
  a += 2;  // the cached reference must still point into the registry
  EXPECT_EQ(m.snapshot().at("disk.writes"), 2u);
  EXPECT_FALSE(m.hist("disk.write_ms").ok);
}

TEST(Metrics, HistogramHandleIsStableAcrossReset) {
  obs::Metrics m;
  obs::Hist& h = m.histogram("rpc", "trans_ms");
  m.observe("rpc", "trans_ms", 1.5);  // cold-path helper hits the same vector
  EXPECT_EQ(h.size(), 1u);
  m.reset();
  EXPECT_TRUE(h.empty());  // cleared in place, node kept
  h.push_back(2.5);        // the cached handle still records
  EXPECT_EQ(m.hist("rpc.trans_ms").n, 1u);
  EXPECT_DOUBLE_EQ(m.hist("rpc.trans_ms").mean, 2.5);
}

// The steady-state recording path — an interned counter bump plus a
// histogram sample within reserved capacity — must not touch the heap.
// (The old observe() built a "<layer>.<name>" string per sample.)
TEST(Metrics, InternedHandlesRecordWithoutAllocating) {
  obs::Metrics m;
  obs::Counter& c = m.counter("rpc", "packets");
  obs::Hist& h = m.histogram("rpc", "trans_ms");
  h.reserve(1024);
  g_alloc_count = 0;
  g_count_allocs = true;
  for (int i = 0; i < 1000; ++i) {
    c += 1;
    h.push_back(0.5 * i);
  }
  g_count_allocs = false;
  EXPECT_EQ(g_alloc_count, 0u);
  EXPECT_EQ(c, 1000u);
  EXPECT_EQ(h.size(), 1000u);
}

TEST(Metrics, PercentilesInterpolate) {
  const std::vector<double> sorted{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(obs::percentile(sorted, 0), 1.0);
  EXPECT_DOUBLE_EQ(obs::percentile(sorted, 50), 2.5);
  EXPECT_DOUBLE_EQ(obs::percentile(sorted, 100), 4.0);
  EXPECT_DOUBLE_EQ(obs::percentile({}, 50), 0.0);
}

TEST(Metrics, EmptyHistogramIsNotOk) {
  const obs::HistSummary h = obs::summarize_samples({});
  EXPECT_FALSE(h.ok);
  EXPECT_EQ(h.n, 0u);
}

// The harness-level twin of the same bug (satellite: summarize() used to
// divide by zero / fabricate figures from nothing).
TEST(Summarize, EmptySampleVectorIsFlaggedNotOk) {
  const harness::Stats s = harness::summarize({});
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, ComputesMeanAndPercentiles) {
  const harness::Stats s = harness::summarize({4, 1, 3, 2});
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  // Population stddev of {1,2,3,4}: sqrt(5/4).
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(1.25));
}

// harness::summarize IS obs::summarize_samples (one implementation of
// percentile/stddev math shared by benches, harness and the timeline
// layer). Pin the equivalence so the alias never silently forks again.
TEST(Summarize, IsTheSharedObsImplementation) {
  const std::vector<double> xs{12.5, 0.25, 7.0, 7.0, 3.5, 99.0, 42.0};
  const harness::Stats a = harness::summarize(xs);
  const obs::HistSummary b = obs::summarize_samples(xs);
  EXPECT_EQ(a.n, b.n);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  // And the percentiles agree with the exact linear-interpolated
  // definition on the sorted samples.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(a.p50, obs::percentile(sorted, 50));
  EXPECT_DOUBLE_EQ(a.p99, obs::percentile(sorted, 99));
}

// ------------------------------------------------------------------ dev()

// dev() used to return 0% when the paper value was 0, making any measured
// value look like a perfect reproduction.
TEST(Dev, ZeroPaperValueHasNoRatio) {
  EXPECT_FALSE(bench::dev(3.7, 0).has_value());
  EXPECT_TRUE(bench::dev_json(3.7, 0).is_null());
  EXPECT_NE(bench::dev_str(3.7, 0).find("n/a"), std::string::npos);
  EXPECT_NE(bench::dev_str(3.7, 0).find("3.7"), std::string::npos);
  ASSERT_TRUE(bench::dev(110, 100).has_value());
  EXPECT_DOUBLE_EQ(*bench::dev(110, 100), 10.0);
}

// ------------------------------------------------------------------- Json

TEST(Json, DeterministicInsertionOrderedDump) {
  obs::Json o = obs::Json::object();
  o.set("b", obs::Json::integer(-2));
  o.set("a", obs::Json::num(2.0));
  o.set("frac", obs::Json::num(0.5));
  o.set("s", obs::Json::str("x\"y\n"));
  obs::Json arr = obs::Json::array();
  arr.push(obs::Json::boolean(true));
  arr.push(obs::Json::null());
  o.set("arr", std::move(arr));
  const std::string expected =
      "{\n"
      "  \"b\": -2,\n"
      "  \"a\": 2,\n"
      "  \"frac\": 0.5,\n"
      "  \"s\": \"x\\\"y\\n\",\n"
      "  \"arr\": [\n"
      "    true,\n"
      "    null\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(o.dump(), expected);
  EXPECT_EQ(o.dump(), expected);  // byte-stable across repeated dumps
}

// ------------------------------------------------------------------ Trace

TEST(Trace, RingDropsOldestAndDigestsContent) {
  obs::Trace t(2);
  t.complete(10, 5, "net", "deliver", 1);
  t.instant(20, "group", "view", 2, 7);
  t.instant(30, "group", "reset", 3);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  EXPECT_EQ(std::string(t.events().front().name), "view");

  obs::Trace u(2);
  u.complete(10, 5, "net", "deliver", 1);
  u.instant(20, "group", "view", 2, 7);
  u.instant(30, "group", "reset", 3);
  EXPECT_EQ(t.digest(), u.digest());
  u.instant(31, "group", "reset", 3);
  EXPECT_NE(t.digest(), u.digest());
}

TEST(Trace, RecordingGateDropsEventsWhileDetached) {
  obs::Trace t;
  t.set_recording(false);
  t.complete(10, 5, "net", "deliver", 1);
  t.instant(20, "group", "view", 2);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);  // gated events are not "dropped" overflow
  t.set_recording(true);
  t.instant(30, "group", "reset", 3);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Trace, ClearKeepsRecordingUsable) {
  obs::Trace t(4);
  for (int i = 0; i < 6; ++i) t.instant(i, "net", "drop_loss", 1);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.instant(99, "net", "drop_loss", 1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events().front().ts, 99);
}

TEST(Trace, ChromeJsonShape) {
  obs::Trace t;
  t.complete(1000, 250, "rpc", "trans", 4, 9);
  t.instant(2000, "group", "failed", 5);
  const std::string j = t.to_chrome_json();
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"rpc\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\":250"), std::string::npos);
  EXPECT_EQ(j, t.to_chrome_json());
}

// ----------------------------------------------------- paper's cost model

constexpr net::Port kEcho{100};

TEST(CostModel, QuietNetworkRpcIsThreePackets) {
  sim::Simulator sim(11);
  net::Cluster cluster(sim);
  net::Machine& s = cluster.add_machine("server");
  net::Machine& c = cluster.add_machine("client");
  s.install_service("echo", [](net::Machine& mm) {
    auto server = std::make_shared<rpc::RpcServer>(mm, kEcho);
    mm.spawn("echo.t0", [server] {
      while (true) {
        rpc::IncomingRequest req = server->get_request();
        server->put_reply(req, req.data);
      }
    });
    mm.sim().sleep_for(sim::kTimeMax / 2);
  });

  obs::Metrics::Snapshot before, after;
  c.spawn("client", [&] {
    rpc::RpcClient rpc(c);
    (void)rpc.trans(kEcho, to_buffer("warm"));  // locate + port-cache fill
    before = cluster.metrics().snapshot();
    (void)rpc.trans(kEcho, to_buffer("ping"));
    after = cluster.metrics().snapshot();
  });
  sim.run_until(sim::msec(500));

  const obs::Metrics::Snapshot d = obs::Metrics::delta(after, before);
  // "An RPC in Amoeba requires only 3 messages": request, reply, and the
  // piggybacked ack (modelled, not sent — 2 packets cross the wire).
  EXPECT_EQ(d.at("rpc.packets"), 3u);
  EXPECT_EQ(d.at("rpc.transactions"), 1u);
  EXPECT_EQ(d.at("net.unicasts"), 2u);
  EXPECT_EQ(d.count("rpc.timeouts"), 0u);
}

obs::Metrics::Snapshot one_group_send_delta(int r, bool from_sequencer) {
  sim::Simulator sim(7);
  net::Cluster cluster(sim);
  std::vector<std::unique_ptr<group::GroupMember>> members(3);
  group::GroupConfig cfg;
  cfg.port = net::Port{900};
  cfg.resilience = r;
  for (int i = 0; i < 3; ++i) {
    cfg.universe.push_back(net::MachineId{static_cast<std::uint16_t>(i)});
  }
  for (int i = 0; i < 3; ++i) {
    net::Machine* m = &cluster.add_machine("g" + std::to_string(i));
    m->spawn("member", [&, m, cfg, i] {
      if (i == 0) {
        members[0] = group::GroupMember::create(*m, cfg);
      } else {
        sim.sleep_for(sim::msec(5 * i));
        while (!members[static_cast<std::size_t>(i)]) {
          auto res = group::GroupMember::join(*m, cfg);
          if (res.is_ok()) {
            members[static_cast<std::size_t>(i)] = std::move(*res);
          } else {
            sim.sleep_for(sim::msec(10));
          }
        }
      }
      while (true) (void)members[static_cast<std::size_t>(i)]->receive();
    });
  }
  sim.run_for(sim::msec(200));  // formation + joins = warmup, excluded
  const obs::Metrics::Snapshot before = cluster.metrics().snapshot();
  const int sender = from_sequencer ? 0 : 1;
  cluster.machine(net::MachineId{static_cast<std::uint16_t>(sender)})
      .spawn("send", [&, sender] {
        (void)members[static_cast<std::size_t>(sender)]->send_to_group(
            to_buffer("x"));
      });
  sim.run_for(sim::msec(300));
  return obs::Metrics::delta(cluster.metrics().snapshot(), before);
}

TEST(CostModel, GroupSendFromSequencerIsOneMulticastPlusAcks) {
  const obs::Metrics::Snapshot d = one_group_send_delta(2, true);
  // Sequencer-origin send: 1 ACCEPT multicast + (N-1) = 2 member acks.
  EXPECT_EQ(d.at("group.data_packets"), 3u);
  EXPECT_EQ(d.at("group.data_multicasts"), 1u);
  EXPECT_EQ(d.at("group.sends"), 1u);
}

TEST(CostModel, GroupSendFromMemberIsFivePackets) {
  const obs::Metrics::Snapshot d = one_group_send_delta(2, false);
  // Paper Sec. 3.1: "A SendToGroup with r = 2 requires 5 messages".
  EXPECT_EQ(d.at("group.data_packets"), 5u);
  EXPECT_EQ(d.at("group.sends"), 1u);
}

TEST(CostModel, NvramModeAppendTouchesNvramNotDisk) {
  harness::Testbed bed(
      {.flavor = harness::Flavor::group_nvram, .clients = 1, .seed = 21});
  ASSERT_TRUE(bed.wait_ready());
  net::Machine& cm = bed.client(0);
  cap::Capability dcap;
  bool ready = false;
  cm.spawn("setup", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < 50 && !ready; ++i) {
      auto res = dc.create_dir({"c"});
      if (res.is_ok()) {
        dcap = *res;
        ready = true;
      } else {
        bed.sim().sleep_for(sim::msec(100));
      }
    }
  });
  bed.sim().run_for(sim::sec(10));
  ASSERT_TRUE(ready);
  bed.sim().run_for(sim::sec(3));  // let the create's log record flush

  const obs::Metrics::Snapshot before = bed.metrics().snapshot();
  bool done = false;
  cm.spawn("load", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    (void)dc.append_row(dcap, "a", {});
    (void)dc.append_row(dcap, "b", {});
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(20));
  const obs::Metrics::Snapshot d =
      obs::Metrics::delta(bed.metrics().snapshot(), before);
  // Sec. 4.1: with NVRAM the update's durability is the log append; no
  // disk write happens in the critical path (flushes come later, idle).
  EXPECT_GE(d.at("nvram.appends"), 2u);
  EXPECT_EQ(d.count("disk.writes"), 0u);
}

// --------------------------------------------- warmup invariance (headline)

obs::Metrics::Snapshot measured_append_window(int warmup_ops, int measured_ops) {
  harness::Testbed bed(
      {.flavor = harness::Flavor::group, .clients = 1, .seed = 33});
  if (!bed.wait_ready()) return {};
  net::Machine& cm = bed.client(0);
  cap::Capability dcap;
  bool ready = false;
  cm.spawn("setup", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < 50 && !ready; ++i) {
      auto res = dc.create_dir({"c"});
      if (res.is_ok()) {
        dcap = *res;
        ready = true;
      } else {
        bed.sim().sleep_for(sim::msec(100));
      }
    }
  });
  bed.sim().run_for(sim::sec(10));
  if (!ready) return {};

  bool warm_done = false;
  cm.spawn("warmup", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < warmup_ops; ++i) {
      (void)dc.append_row(dcap, "w" + std::to_string(i), {});
    }
    warm_done = true;
  });
  while (!warm_done) bed.sim().run_for(sim::msec(100));
  bed.sim().run_for(sim::sec(4));  // drain the warmup's lazy disk work

  const obs::Metrics::Snapshot before = bed.metrics().snapshot();
  bool done = false;
  cm.spawn("load", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < measured_ops; ++i) {
      (void)dc.append_row(dcap, "m" + std::to_string(i), {});
    }
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));
  bed.sim().run_for(sim::sec(4));  // drain the measured window's lazy work
  return obs::Metrics::delta(bed.metrics().snapshot(), before);
}

// The headline bug: per-op message/disk counts reported by the benches
// used to include warmup traffic. With snapshot-and-subtract at the window
// boundary, a warmup-heavy run must report exactly the same counts for the
// measured window as a warmup-light one.
TEST(WarmupInvariance, PerOpCountsDoNotDependOnWarmupVolume) {
  const int kMeasured = 6;
  const obs::Metrics::Snapshot light = measured_append_window(2, kMeasured);
  const obs::Metrics::Snapshot heavy = measured_append_window(12, kMeasured);
  ASSERT_NE(light.count("disk.writes"), 0u);
  ASSERT_NE(heavy.count("disk.writes"), 0u);
  EXPECT_EQ(light.at("disk.writes"), heavy.at("disk.writes"));
  EXPECT_EQ(light.at("group.sends"), heavy.at("group.sends"));
  EXPECT_EQ(light.at("group.sends"), static_cast<std::uint64_t>(kMeasured));
  EXPECT_EQ(light.at("dir.group.writes"), heavy.at("dir.group.writes"));
  // Packets per send depend on which server the client's locate picked
  // (3 from the sequencer, 5 from a member) — bounded, but not a constant.
  for (const auto* w : {&light, &heavy}) {
    EXPECT_GE(w->at("group.data_packets"), 3u * kMeasured);
    EXPECT_LE(w->at("group.data_packets"), 5u * kMeasured);
  }
  // The paper's figure: 2 disk writes per server per update, 3 servers.
  EXPECT_EQ(light.at("disk.writes"), 6u * kMeasured);
}

// ------------------------------------------------------------ determinism

struct ScenarioResult {
  obs::Metrics::Snapshot metrics;
  std::uint64_t trace_digest = 0;
  std::string chrome_json;
  std::string bench_json;
};

ScenarioResult run_scenario(std::uint64_t seed) {
  ScenarioResult out;
  harness::Testbed bed(
      {.flavor = harness::Flavor::group, .clients = 1, .seed = seed});
  if (!bed.wait_ready()) return out;
  net::Machine& cm = bed.client(0);
  bool done = false;
  cm.spawn("scenario", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    Result<cap::Capability> dcap = dc.create_dir({"c"});
    for (int i = 0; i < 40 && !dcap.is_ok(); ++i) {
      bed.sim().sleep_for(sim::msec(100));
      dcap = dc.create_dir({"c"});
    }
    if (!dcap.is_ok()) return;
    for (int i = 0; i < 3; ++i) {
      (void)dc.append_row(*dcap, "e" + std::to_string(i), {});
      (void)dc.lookup(*dcap, "e" + std::to_string(i));
    }
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));
  bed.sim().run_for(sim::sec(2));

  out.metrics = bed.metrics().snapshot();
  out.trace_digest = bed.trace().digest();
  out.chrome_json = bed.trace().to_chrome_json();
  obs::Json root = obs::Json::object();
  root.set("counters", bench::counters_json(out.metrics));
  out.bench_json = root.dump();
  return out;
}

// Two same-seed runs must produce byte-identical observability output —
// the property CI's BENCH_*.json determinism check relies on.
TEST(ObsDeterminism, SameSeedRunsProduceIdenticalCountersAndTraces) {
  const ScenarioResult a = run_scenario(17);
  const ScenarioResult b = run_scenario(17);
  ASSERT_FALSE(a.metrics.empty());
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.chrome_json, b.chrome_json);
  EXPECT_EQ(a.bench_json, b.bench_json);
}

}  // namespace
}  // namespace amoeba

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "sim/mailbox.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/waitq.h"

namespace amoeba::sim {
namespace {

TEST(SimulatorTest, TimeAdvancesWithSleep) {
  Simulator s;
  Time woke = -1;
  s.spawn("p", [&] {
    s.sleep_for(msec(5));
    woke = s.now();
  });
  s.run();
  EXPECT_EQ(woke, msec(5));
}

TEST(SimulatorTest, ProcessesInterleaveDeterministically) {
  Simulator s;
  std::vector<std::string> trace;
  s.spawn("a", [&] {
    trace.push_back("a0");
    s.sleep_for(10);
    trace.push_back("a1");
    s.sleep_for(20);
    trace.push_back("a2");
  });
  s.spawn("b", [&] {
    trace.push_back("b0");
    s.sleep_for(15);
    trace.push_back("b1");
  });
  s.run();
  std::vector<std::string> expect{"a0", "b0", "a1", "b1", "a2"};
  EXPECT_EQ(trace, expect);
}

TEST(SimulatorTest, EqualTimeEventsRunInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.post(msec(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.post(msec(10), [&] { fired++; });
  s.post(msec(20), [&] { fired++; });
  s.run_until(msec(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), msec(10));
  s.run_until(msec(30));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SpawnFromProcess) {
  Simulator s;
  Time child_time = -1;
  s.spawn("parent", [&] {
    s.sleep_for(5);
    s.spawn("child", [&] {
      s.sleep_for(3);
      child_time = s.now();
    });
    s.sleep_for(100);
  });
  s.run();
  EXPECT_EQ(child_time, 8);
}

TEST(SimulatorTest, DeterminismAcrossRuns) {
  auto run_once = [] {
    Simulator s(42);
    std::vector<std::int64_t> trace;
    for (int p = 0; p < 4; ++p) {
      s.spawn("p" + std::to_string(p), [&s, &trace] {
        for (int i = 0; i < 10; ++i) {
          s.sleep_for(static_cast<Duration>(s.rng().below(100)));
          trace.push_back(s.now());
        }
      });
    }
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, KillUnwindsRaii) {
  Simulator s;
  bool cleaned = false;
  bool resumed = false;
  Process* victim = s.spawn("victim", [&] {
    struct Guard {
      bool* flag;
      ~Guard() { *flag = true; }
    } g{&cleaned};
    s.sleep_for(msec(100));
    resumed = true;
  });
  s.spawn("killer", [&] {
    s.sleep_for(msec(1));
    s.kill(victim);
  });
  s.run();
  EXPECT_TRUE(cleaned);
  EXPECT_FALSE(resumed);
  EXPECT_TRUE(victim->finished());
}

TEST(SimulatorTest, KillBeforeFirstRunSkipsBody) {
  Simulator s;
  bool ran = false;
  Process* p = s.spawn("p", [&] { ran = true; });
  s.kill(p);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(p->finished());
}

TEST(SimulatorTest, UncaughtExceptionRecorded) {
  Simulator s;
  s.spawn("bad", [] { throw std::runtime_error("boom"); });
  s.run();
  ASSERT_EQ(s.process_errors().size(), 1u);
  EXPECT_NE(s.process_errors()[0].find("boom"), std::string::npos);
}

// Regression: each Simulator installs a log clock, and destroying one used
// to clear the global clock outright — a second, still-live Simulator then
// logged wall-zero timestamps (or worse, through a dangling `this`). The
// stack keeps the surviving simulator's clock active for both destruction
// orders.
TEST(SimulatorTest, LogClockSurvivesOtherSimulatorDestruction) {
  std::vector<std::string> lines;
  log::set_sink([&lines](log::Level, const std::string& l) {
    lines.push_back(l);
  });
  const auto timestamp_of = [&](Simulator& s) {
    lines.clear();
    LOG_ERROR << "probe";
    EXPECT_EQ(lines.size(), 1u);
    char expect[32];
    std::snprintf(expect, sizeof expect, "[%8.3fms]",
                  static_cast<double>(s.now()) / 1000.0);
    return !lines.empty() && lines.front().rfind(expect, 0) == 0;
  };

  {  // LIFO destruction: newest simulator dies first, oldest clock remains.
    auto a = std::make_unique<Simulator>(1);
    a->run_until(msec(7));
    {
      Simulator b(2);
      b.run_until(msec(3));
      EXPECT_TRUE(timestamp_of(b));  // newest clock wins while both live
    }
    EXPECT_TRUE(timestamp_of(*a));
  }
  {  // Non-LIFO: the OLDER simulator dies first; the newer one's clock
    // must stay installed (this order dangled with set/clear semantics).
    auto a = std::make_unique<Simulator>(1);
    auto b = std::make_unique<Simulator>(2);
    b->run_until(msec(11));
    a.reset();
    EXPECT_TRUE(timestamp_of(*b));
  }
  log::set_sink(nullptr);
}

namespace {
struct CopyCounter {
  static int copies;
  CopyCounter() = default;
  CopyCounter(const CopyCounter&) { ++copies; }
  CopyCounter(CopyCounter&&) noexcept {}
  CopyCounter& operator=(const CopyCounter&) {
    ++copies;
    return *this;
  }
  CopyCounter& operator=(CopyCounter&&) noexcept { return *this; }
};
int CopyCounter::copies = 0;
}  // namespace

// post() accepts move-only closures, and dispatch moves the closure out of
// the event instead of copying it (the old engine deep-copied the whole
// Event, payload included, on every dispatch).
TEST(SimulatorTest, PostedClosureIsMovedNotCopied) {
  Simulator s;
  auto owned = std::make_unique<int>(41);
  int got = 0;
  s.post(msec(1), [p = std::move(owned), &got] { got = *p + 1; });

  CopyCounter::copies = 0;
  bool ran = false;
  s.post(msec(2), [c = CopyCounter{}, &ran] { ran = true; });
  s.run();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(ran);
  EXPECT_EQ(CopyCounter::copies, 0);
}

TEST(SimulatorTest, EventsDispatchedCountsClosuresAndWakes) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 10; ++i) s.post(msec(i), [&] { fired++; });
  s.spawn("sleeper", [&] { s.sleep_for(msec(3)); });
  s.run();
  EXPECT_EQ(fired, 10);
  // 10 closures + the spawn grant + the sleep wake.
  EXPECT_EQ(s.events_dispatched(), 12u);
}

TEST(SimulatorTest, DestructorKillsBlockedProcesses) {
  bool cleaned = false;
  {
    Simulator s;
    s.spawn("stuck", [&] {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } g{&cleaned};
      s.sleep_for(sec(3600));
    });
    s.run_until(msec(1));
  }
  EXPECT_TRUE(cleaned);
}

TEST(WaitQueueTest, NotifyOneWakesExactlyOne) {
  Simulator s;
  WaitQueue wq(s);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    s.spawn("w" + std::to_string(i), [&] {
      wq.wait();
      woke++;
    });
  }
  s.spawn("notifier", [&] {
    s.sleep_for(10);
    wq.notify_one();
  });
  s.run_until(msec(1));
  EXPECT_EQ(woke, 1);
}

// Regression: destroying a queue while fibers are still blocked on it,
// then killing those fibers, used to make the blocked side's cleanup walk
// the dead queue's waiter list (heap-use-after-free under ASan).
TEST(WaitQueueTest, QueueDestroyedBeforeBlockedWaiterUnwinds) {
  Simulator s;
  auto wq = std::make_unique<WaitQueue>(s);
  for (int i = 0; i < 3; ++i) {
    s.spawn("w" + std::to_string(i), [&] { wq->wait(); });
  }
  s.run_until(10);   // all three blocked
  wq.reset();        // queue dies first
  // Simulator destruction kills the blocked processes; their unwind must
  // not touch the freed queue.
}

TEST(WaitQueueTest, NotifyAllWakesEveryone) {
  Simulator s;
  WaitQueue wq(s);
  int woke = 0;
  for (int i = 0; i < 4; ++i) {
    s.spawn("w" + std::to_string(i), [&] {
      wq.wait();
      woke++;
    });
  }
  s.spawn("notifier", [&] {
    s.sleep_for(10);
    wq.notify_all();
  });
  s.run_until(msec(1));
  EXPECT_EQ(woke, 4);
}

TEST(WaitQueueTest, WaitUntilTimesOut) {
  Simulator s;
  WaitQueue wq(s);
  bool notified = true;
  Time end = -1;
  s.spawn("w", [&] {
    notified = wq.wait_until(msec(50));
    end = s.now();
  });
  s.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(end, msec(50));
}

TEST(WaitQueueTest, NotifyBeatsTimeout) {
  Simulator s;
  WaitQueue wq(s);
  bool notified = false;
  Time end = -1;
  s.spawn("w", [&] {
    notified = wq.wait_until(msec(50));
    end = s.now();
  });
  s.spawn("n", [&] {
    s.sleep_for(msec(10));
    wq.notify_one();
  });
  s.run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(end, msec(10));
}

TEST(WaitQueueTest, KilledWaiterRemovedFromQueue) {
  Simulator s;
  WaitQueue wq(s);
  Process* victim = s.spawn("victim", [&] { wq.wait(); });
  s.spawn("killer", [&] {
    s.sleep_for(5);
    s.kill(victim);
    s.sleep_for(5);
    EXPECT_EQ(wq.waiter_count(), 0u);
  });
  s.run_until(msec(1));
  EXPECT_TRUE(victim->finished());
}

TEST(WaitQueueTest, NotifyThenKillSameInstant) {
  // A notify and a kill land at the same timestamp; the kill must win
  // (process unwinds) and no crash may occur.
  Simulator s;
  WaitQueue wq(s);
  bool returned = false;
  Process* victim = s.spawn("victim", [&] {
    wq.wait();
    returned = true;
  });
  s.spawn("driver", [&] {
    s.sleep_for(5);
    wq.notify_one();
    s.kill(victim);
  });
  s.run_until(msec(1));
  EXPECT_TRUE(victim->finished());
  EXPECT_FALSE(returned);
}

TEST(MailboxTest, FifoOrder) {
  Simulator s;
  Mailbox<int> mb(s);
  std::vector<int> got;
  s.spawn("recv", [&] {
    for (int i = 0; i < 3; ++i) got.push_back(mb.recv());
  });
  s.spawn("send", [&] {
    mb.send(1);
    mb.send(2);
    s.sleep_for(10);
    mb.send(3);
  });
  s.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(MailboxTest, RecvBlocksUntilSend) {
  Simulator s;
  Mailbox<int> mb(s);
  Time got_at = -1;
  s.spawn("recv", [&] {
    mb.recv();
    got_at = s.now();
  });
  s.spawn("send", [&] {
    s.sleep_for(msec(7));
    mb.send(1);
  });
  s.run();
  EXPECT_EQ(got_at, msec(7));
}

TEST(MailboxTest, RecvUntilTimesOut) {
  Simulator s;
  Mailbox<int> mb(s);
  bool got = true;
  s.spawn("recv", [&] { got = mb.recv_for(msec(20)).has_value(); });
  s.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(s.now(), msec(20));
}

TEST(MailboxTest, SendFromSchedulerContext) {
  Simulator s;
  Mailbox<int> mb(s);
  int got = 0;
  s.spawn("recv", [&] { got = mb.recv(); });
  s.post(msec(3), [&] { mb.send(99); });
  s.run();
  EXPECT_EQ(got, 99);
}

TEST(MailboxTest, TryRecvNonBlocking) {
  Simulator s;
  Mailbox<int> mb(s);
  std::optional<int> a, b;
  s.spawn("p", [&] {
    a = mb.try_recv();
    mb.send(5);
    b = mb.try_recv();
  });
  s.run();
  EXPECT_FALSE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 5);
}

TEST(MailboxTest, TwoReceiversEachGetOne) {
  Simulator s;
  Mailbox<int> mb(s);
  int sum = 0;
  for (int i = 0; i < 2; ++i) {
    s.spawn("r" + std::to_string(i), [&] { sum += mb.recv(); });
  }
  s.spawn("send", [&] {
    s.sleep_for(1);
    mb.send(10);
    mb.send(20);
  });
  s.run();
  EXPECT_EQ(sum, 30);
}

TEST(FifoResourceTest, SerializesUsers) {
  Simulator s;
  FifoResource disk(s, "disk");
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    s.spawn("u" + std::to_string(i), [&] {
      disk.use(msec(10));
      done.push_back(s.now());
    });
  }
  s.run();
  EXPECT_EQ(done, (std::vector<Time>{msec(10), msec(20), msec(30)}));
  EXPECT_EQ(disk.ops(), 3u);
  EXPECT_EQ(disk.busy_time(), msec(30));
}

TEST(FifoResourceTest, FifoOrderPreserved) {
  Simulator s;
  FifoResource r(s, "r");
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    s.spawn("u" + std::to_string(i), [&, i] {
      s.sleep_for(i);  // arrival order 0,1,2,3
      r.use(msec(5));
      order.push_back(i);
    });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FifoResourceTest, KilledWaiterDoesNotStallQueue) {
  Simulator s;
  FifoResource r(s, "r");
  bool third_done = false;
  s.spawn("holder", [&] { r.use(msec(10)); });
  Process* victim = s.spawn("victim", [&] {
    s.sleep_for(1);
    r.use(msec(10));
  });
  s.spawn("third", [&] {
    s.sleep_for(2);
    r.use(msec(10));
    third_done = true;
  });
  s.spawn("killer", [&] {
    s.sleep_for(5);
    s.kill(victim);
  });
  s.run();
  EXPECT_TRUE(third_done);
  EXPECT_EQ(s.now(), msec(20));  // holder then third; victim never held it
}

TEST(FifoResourceTest, KilledHolderReleases) {
  Simulator s;
  FifoResource r(s, "r");
  Time second_done_at = -1;
  Process* victim = s.spawn("holder", [&] { r.use(msec(100)); });
  s.spawn("second", [&] {
    s.sleep_for(1);
    r.use(msec(10));
    second_done_at = s.now();
  });
  s.spawn("killer", [&] {
    s.sleep_for(msec(5));
    s.kill(victim);
  });
  s.run();
  // Holder dies at 5ms, releasing the resource; second then holds 10ms.
  EXPECT_EQ(second_done_at, msec(15));
}

TEST(FifoResourceTest, ContentionProducesQueueingDelay) {
  // Two users of a 3ms CPU arriving together: second finishes at 6ms. This
  // is the mechanism behind the paper's 333 lookups/sec/server bound.
  Simulator s;
  FifoResource cpu(s, "cpu");
  std::vector<Time> done;
  for (int i = 0; i < 2; ++i) {
    s.spawn("u" + std::to_string(i), [&] {
      cpu.use(msec(3));
      done.push_back(s.now());
    });
  }
  s.run();
  EXPECT_EQ(done, (std::vector<Time>{msec(3), msec(6)}));
}

}  // namespace
}  // namespace amoeba::sim

// Cross-cutting integration tests: whole-testbed determinism, service
// counters, lazy replication, resync, mixed multi-client workloads and the
// NFS file endpoint.
#include <gtest/gtest.h>

#include "bullet/bullet.h"
#include "dir/client.h"
#include "dir/group_server.h"
#include "dir/nfs_server.h"
#include "dir/rpc_server.h"
#include "harness/workload.h"

namespace amoeba::harness {
namespace {

TEST(Determinism, IdenticalSeedsProduceIdenticalMeasurements) {
  // The whole stack — network jitter, locate races, check-field generation,
  // recovery timing — is a pure function of the seed.
  auto measure = [](std::uint64_t seed) {
    Testbed bed({.flavor = Flavor::group, .clients = 1, .seed = seed});
    EXPECT_TRUE(bed.wait_ready());
    return measure_latencies(bed, 2, 8);
  };
  auto a = measure(1234);
  auto b = measure(1234);
  auto c = measure(5678);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.append_delete_ms, b.append_delete_ms);  // bit-for-bit
  EXPECT_EQ(a.tmp_file_ms, b.tmp_file_ms);
  EXPECT_EQ(a.lookup_ms, b.lookup_ms);
  // And a different seed gives (at least slightly) different timings.
  EXPECT_NE(a.append_delete_ms, c.append_delete_ms);
}

TEST(Counters, GroupServiceTracksReadsWritesAndRefusals) {
  Testbed bed({.flavor = Flavor::group, .clients = 1, .seed = 61});
  ASSERT_TRUE(bed.wait_ready());
  bool done = false;
  net::Machine& cm = bed.client(0);
  cm.spawn("load", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    auto d = dc.create_dir({"c"});
    ASSERT_TRUE(d.is_ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(dc.append_row(*d, "n" + std::to_string(i), {}).is_ok());
      ASSERT_TRUE(dc.list_dir(*d).is_ok());
    }
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));

  std::uint64_t reads = 0, writes = 0;
  for (int i = 0; i < 3; ++i) {
    reads += dir::group_dir_stats(bed.dir_server(i)).reads;
    writes += dir::group_dir_stats(bed.dir_server(i)).writes;
  }
  EXPECT_EQ(writes, 6u);  // create + 5 appends
  EXPECT_EQ(reads, 5u);

  // Refusals are counted once the majority is gone.
  bed.cluster().crash(bed.dir_server(1).id());
  bed.cluster().crash(bed.dir_server(2).id());
  bed.sim().run_for(sim::sec(2));
  done = false;
  cm.spawn("refused", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    (void)dc.create_dir({"c"});
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));
  EXPECT_GE(dir::group_dir_stats(bed.dir_server(0)).refused_no_majority, 1u);
}

TEST(Counters, RpcServiceLazyReplicationCatchesUp) {
  Testbed bed({.flavor = Flavor::rpc, .clients = 1, .seed = 62});
  ASSERT_TRUE(bed.wait_ready());
  bool done = false;
  net::Machine& cm = bed.client(0);
  cm.spawn("load", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    auto d = dc.create_dir({"c"});
    ASSERT_TRUE(d.is_ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(dc.append_row(*d, "n" + std::to_string(i), {}).is_ok());
    }
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));
  bed.sim().run_for(sim::sec(3));  // drain the background copies

  std::uint64_t intents = 0, lazies = 0;
  for (int i = 0; i < 2; ++i) {
    intents += dir::rpc_dir_stats(bed.dir_server(i)).intents_received;
    lazies += dir::rpc_dir_stats(bed.dir_server(i)).lazy_finalizes;
  }
  EXPECT_EQ(intents, 5u);  // every update crossed to the peer
  EXPECT_GE(lazies, 1u);   // background copies ran (coalescing may merge)
  // Both replicas end up holding a bullet file for the directory.
  for (int i = 0; i < 2; ++i) {
    auto& store = bed.storage(i).persistent<bullet::BulletStore>(
        "bullet.store", [] { return std::make_unique<bullet::BulletStore>(); });
    EXPECT_EQ(store.files.size(), 1u) << "storage " << i;
  }
}

TEST(Counters, RpcResyncAfterRestart) {
  Testbed bed({.flavor = Flavor::rpc, .clients = 1, .seed = 63});
  ASSERT_TRUE(bed.wait_ready());
  bool done = false;
  net::Machine& cm = bed.client(0);
  cap::Capability dcap;
  cm.spawn("load", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    auto d = dc.create_dir({"c"});
    ASSERT_TRUE(d.is_ok());
    dcap = *d;
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));

  bed.cluster().crash(bed.dir_server(1).id());
  bed.sim().run_for(sim::msec(500));
  done = false;
  cm.spawn("more", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < 30; ++i) {
      if (dc.append_row(dcap, "while-down", {}).is_ok()) break;
      bed.sim().sleep_for(sim::msec(200));
      rpc.flush_port_cache(bed.dir_port());
    }
    done = true;
  });
  while (!done) bed.sim().run_for(sim::msec(100));

  bed.cluster().restart(bed.dir_server(1).id());
  bed.sim().run_for(sim::sec(5));
  EXPECT_GE(dir::rpc_dir_stats(bed.dir_server(1)).resyncs, 1u)
      << "restarted replica should fetch the missed update";
}

class MixedWorkload : public ::testing::TestWithParam<Flavor> {};

TEST_P(MixedWorkload, ManyClientsMixedOpsStayCoherent) {
  Testbed bed({.flavor = GetParam(), .clients = 4, .seed = 64});
  ASSERT_TRUE(bed.wait_ready());
  cap::Capability shared;
  bool setup = false;
  bed.client(0).spawn("setup", [&] {
    rpc::RpcClient rpc(bed.client(0));
    dir::DirClient dc(rpc, bed.dir_port());
    for (int i = 0; i < 50 && !setup; ++i) {
      auto d = dc.create_dir({"c"});
      if (d.is_ok()) {
        shared = *d;
        setup = true;
      } else {
        bed.sim().sleep_for(sim::msec(100));
      }
    }
  });
  bed.sim().run_for(sim::sec(10));
  ASSERT_TRUE(setup);

  int failures = 0, total = 0;
  for (int c = 0; c < 4; ++c) {
    net::Machine& cm = bed.client(c);
    cm.spawn("mix", [&, c] {
      rpc::RpcClient rpc(cm);
      dir::DirClient dc(rpc, bed.dir_port());
      cap::Capability v;
      v.object = static_cast<std::uint32_t>(c);
      for (int i = 0; i < 8; ++i) {
        const std::string name =
            "c" + std::to_string(c) + "." + std::to_string(i);
        total += 3;
        if (!dc.append_row(shared, name, {v}).is_ok()) failures++;
        if (!dc.lookup(shared, name).is_ok()) failures++;
        if (!dc.list_dir(shared).is_ok()) failures++;
      }
    });
  }
  bed.sim().run_for(sim::sec(60));
  EXPECT_EQ(failures, 0) << "of " << total << " operations";

  // Final listing holds all 32 rows, whoever serves the read.
  bool verified = false;
  bed.client(0).spawn("verify", [&] {
    rpc::RpcClient rpc(bed.client(0));
    dir::DirClient dc(rpc, bed.dir_port());
    auto listing = dc.list_dir(shared);
    ASSERT_TRUE(listing.is_ok());
    EXPECT_EQ(listing->rows.size(), 32u);
    verified = true;
  });
  bed.sim().run_for(sim::sec(5));
  EXPECT_TRUE(verified);
}

INSTANTIATE_TEST_SUITE_P(Impl, MixedWorkload,
                         ::testing::Values(Flavor::group, Flavor::group_nvram,
                                           Flavor::rpc, Flavor::rpc_nvram,
                                           Flavor::nfs),
                         [](const auto& info) {
                           return std::string(flavor_name(info.param))
                                      .substr(0, 3) +
                                  std::to_string(static_cast<int>(info.param));
                         });

TEST(NfsFileEndpoint, SpeaksBulletProtocol) {
  Testbed bed({.flavor = Flavor::nfs, .clients = 1, .seed = 65});
  ASSERT_TRUE(bed.wait_ready());
  bool done = false;
  net::Machine& cm = bed.client(0);
  cm.spawn("files", [&] {
    rpc::RpcClient rpc(cm);
    bullet::BulletClient files(rpc, bed.file_port());
    auto cap = files.create(to_buffer("tmp data"));
    ASSERT_TRUE(cap.is_ok());
    auto data = files.read(*cap);
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(to_string(*data), "tmp data");
    cap::Capability forged = *cap;
    forged.check ^= 1;
    EXPECT_EQ(files.read(forged).code(), Errc::bad_capability);
    EXPECT_TRUE(files.del(*cap).is_ok());
    EXPECT_EQ(files.read(*cap).code(), Errc::not_found);
    done = true;
  });
  bed.sim().run_for(sim::sec(10));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace amoeba::harness

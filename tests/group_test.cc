// Tests for the Amoeba group-communication layer: total order, resilience,
// failure detection, ResetGroup, join/leave, and recovery interplay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "group/group.h"
#include "net/cluster.h"

namespace amoeba::group {
namespace {

constexpr Port kGroupPort{7000};

struct Node {
  net::Machine* machine = nullptr;
  std::unique_ptr<GroupMember> gm;
  std::vector<std::string> delivered;    // data payloads, in delivery order
  std::vector<std::uint64_t> seqnos;     // their seqnos
  int failures_seen = 0;
  bool auto_reset = false;
  bool stop = false;
};

struct GroupFixture : ::testing::Test {
  sim::Simulator sim{31};
  net::Cluster cluster{sim};
  std::vector<std::unique_ptr<Node>> nodes;
  int miss_limit = 4;  // loss tests raise this to avoid false positives

  GroupConfig make_cfg(int n, int r = 2) {
    GroupConfig cfg;
    cfg.port = kGroupPort;
    for (int i = 0; i < n; ++i) cfg.universe.push_back(MachineId{static_cast<std::uint16_t>(i)});
    cfg.resilience = r;
    cfg.miss_limit = miss_limit;
    return cfg;
  }

  /// Boot n machines; machine 0 creates the group, others join. Each node
  /// runs a receiver loop recording data messages.
  void boot(int n, int r = 2) {
    GroupConfig cfg = make_cfg(n, r);
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      node->machine = &cluster.add_machine("g" + std::to_string(i));
      nodes.push_back(std::move(node));
    }
    for (int i = 0; i < n; ++i) {
      Node* node = nodes[i].get();
      node->machine->spawn("driver", [this, node, cfg, i] {
        if (i == 0) {
          node->gm = GroupMember::create(*node->machine, cfg);
        } else {
          sim.sleep_for(sim::msec(2 + 2 * i));
          while (!node->gm) {
            auto res = GroupMember::join(*node->machine, cfg);
            if (res.is_ok()) {
              node->gm = std::move(*res);
            } else {
              sim.sleep_for(sim::msec(10));
            }
          }
        }
        receiver_loop(node);
      });
    }
  }

  void receiver_loop(Node* node) {
    while (!node->stop) {
      auto res = node->gm->receive();
      if (res.is_ok()) {
        if (res->kind == MsgKind::data) {
          node->delivered.push_back(to_string(res->payload));
          node->seqnos.push_back(res->seqno);
        }
        continue;
      }
      node->failures_seen++;
      if (node->auto_reset) {
        (void)node->gm->reset_group(sim::msec(1000));
      } else {
        sim.sleep_for(sim::msec(20));
      }
    }
  }

  /// Spawn a sender process on node i that sends the given payloads.
  void send_from(int i, std::vector<std::string> payloads,
                 sim::Duration gap = 0, std::vector<Status>* out = nullptr) {
    Node* node = nodes[static_cast<std::size_t>(i)].get();
    node->machine->spawn("sender", [this, node, payloads, gap, out] {
      for (const auto& p : payloads) {
        Status st = node->gm->send_to_group(to_buffer(p));
        if (out) out->push_back(st);
        if (gap > 0) sim.sleep_for(gap);
      }
    });
  }
};

TEST_F(GroupFixture, CreateAndJoinThree) {
  boot(3);
  sim.run_until(sim::msec(100));
  for (auto& node : nodes) {
    ASSERT_TRUE(node->gm);
    GroupInfo gi = node->gm->info();
    EXPECT_EQ(gi.state, MemberState::normal);
    EXPECT_EQ(gi.members.size(), 3u);
    EXPECT_EQ(gi.sequencer, MachineId{0});
  }
}

TEST_F(GroupFixture, TotalOrderSingleSender) {
  boot(3);
  sim.run_until(sim::msec(100));
  std::vector<Status> results;
  send_from(1, {"a", "b", "c", "d", "e"}, 0, &results);
  sim.run_until(sim::msec(600));
  ASSERT_EQ(results.size(), 5u);
  for (const auto& st : results) EXPECT_TRUE(st.is_ok()) << st.to_string();
  std::vector<std::string> expect{"a", "b", "c", "d", "e"};
  for (auto& node : nodes) {
    EXPECT_EQ(node->delivered, expect) << "node " << node->machine->name();
  }
}

TEST_F(GroupFixture, SeqnosAreDenseAndIdentical) {
  boot(3);
  sim.run_until(sim::msec(100));
  send_from(0, {"1", "2", "3"});
  send_from(2, {"4", "5", "6"});
  sim.run_until(sim::msec(800));
  ASSERT_EQ(nodes[0]->seqnos.size(), 6u);
  EXPECT_EQ(nodes[0]->seqnos, nodes[1]->seqnos);
  EXPECT_EQ(nodes[0]->seqnos, nodes[2]->seqnos);
  for (std::size_t k = 1; k < nodes[0]->seqnos.size(); ++k) {
    EXPECT_EQ(nodes[0]->seqnos[k], nodes[0]->seqnos[k - 1] + 1);
  }
}

struct OrderParams {
  int members;
  int senders;
  std::uint64_t seed;
};

class TotalOrderSweep : public ::testing::TestWithParam<OrderParams> {};

TEST_P(TotalOrderSweep, ConcurrentSendersAgreeOnOneOrder) {
  const OrderParams p = GetParam();
  sim::Simulator sim(p.seed);
  net::Cluster cluster(sim);
  std::vector<std::unique_ptr<Node>> nodes;

  GroupConfig cfg;
  cfg.port = kGroupPort;
  for (int i = 0; i < p.members; ++i) {
    cfg.universe.push_back(MachineId{static_cast<std::uint16_t>(i)});
  }
  for (int i = 0; i < p.members; ++i) {
    auto node = std::make_unique<Node>();
    node->machine = &cluster.add_machine("g" + std::to_string(i));
    nodes.push_back(std::move(node));
  }
  for (int i = 0; i < p.members; ++i) {
    Node* node = nodes[static_cast<std::size_t>(i)].get();
    node->machine->spawn("driver", [&sim, node, cfg, i] {
      if (i == 0) {
        node->gm = GroupMember::create(*node->machine, cfg);
      } else {
        sim.sleep_for(sim::msec(2 + 2 * i));
        while (!node->gm) {
          auto res = GroupMember::join(*node->machine, cfg);
          if (res.is_ok()) {
            node->gm = std::move(*res);
          } else {
            sim.sleep_for(sim::msec(10));
          }
        }
      }
      while (true) {
        auto res = node->gm->receive();
        if (!res.is_ok()) break;
        if (res->kind == MsgKind::data) {
          node->delivered.push_back(to_string(res->payload));
        }
      }
    });
  }
  sim.run_until(sim::msec(100));
  const int per_sender = 8;
  for (int s = 0; s < p.senders; ++s) {
    Node* node = nodes[static_cast<std::size_t>(s % p.members)].get();
    node->machine->spawn("sender" + std::to_string(s), [&sim, node, s] {
      for (int k = 0; k < per_sender; ++k) {
        std::string payload =
            "s" + std::to_string(s) + "." + std::to_string(k);
        (void)node->gm->send_to_group(to_buffer(payload));
        sim.sleep_for(static_cast<sim::Duration>(sim.rng().below(3000)));
      }
    });
  }
  sim.run_until(sim::sec(5));
  const auto& reference = nodes[0]->delivered;
  EXPECT_EQ(reference.size(),
            static_cast<std::size_t>(p.senders * per_sender));
  for (auto& node : nodes) {
    EXPECT_EQ(node->delivered, reference)
        << "divergent order at " << node->machine->name();
  }
  // Per-sender FIFO: sk.0 before sk.1 before ...
  for (int s = 0; s < p.senders; ++s) {
    int last = -1;
    for (int k = 0; k < per_sender; ++k) {
      auto needle = "s" + std::to_string(s) + "." + std::to_string(k);
      auto it = std::find(reference.begin(), reference.end(), needle);
      ASSERT_NE(it, reference.end()) << needle << " missing";
      int pos = static_cast<int>(it - reference.begin());
      EXPECT_GT(pos, last);
      last = pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotalOrderSweep,
    ::testing::Values(OrderParams{2, 2, 1}, OrderParams{3, 3, 2},
                      OrderParams{3, 3, 3}, OrderParams{4, 4, 4},
                      OrderParams{5, 5, 5}, OrderParams{5, 3, 6},
                      OrderParams{3, 1, 7}, OrderParams{4, 2, 8}));

TEST_F(GroupFixture, FivePacketsForNonSequencerSend) {
  boot(3);
  sim.run_until(sim::msec(200));  // let join traffic settle
  std::uint64_t before = 0;
  for (auto& node : nodes) before += node->gm->stats().data_packets;
  send_from(1, {"x"});
  sim.run_until(sim::msec(400));
  std::uint64_t after = 0;
  for (auto& node : nodes) after += node->gm->stats().data_packets;
  // REQ + multicast ACCEPT + 2 ACK + COMMIT = 5 (paper Sec. 3.1).
  EXPECT_EQ(after - before, 5u);
}

TEST_F(GroupFixture, ThreePacketsForSequencerSend) {
  boot(3);
  sim.run_until(sim::msec(200));
  std::uint64_t before = 0;
  for (auto& node : nodes) before += node->gm->stats().data_packets;
  send_from(0, {"x"});  // machine 0 is the sequencer
  sim.run_until(sim::msec(400));
  std::uint64_t after = 0;
  for (auto& node : nodes) after += node->gm->stats().data_packets;
  // multicast ACCEPT + 2 ACK = 3.
  EXPECT_EQ(after - before, 3u);
}

TEST_F(GroupFixture, ResilientSendSurvivesTwoCrashes) {
  boot(3, /*r=*/2);
  sim.run_until(sim::msec(100));
  bool sent = false;
  nodes[1]->machine->spawn("sender", [&] {
    Status st = nodes[1]->gm->send_to_group(to_buffer("precious"));
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    sent = true;
    // The send committed: r=2 means all three members buffer it. Now the
    // other two crash; this member must still deliver it.
    cluster.crash(MachineId{0});
    cluster.crash(MachineId{2});
  });
  sim.run_until(sim::sec(2));
  EXPECT_TRUE(sent);
  ASSERT_EQ(nodes[1]->delivered.size(), 1u);
  EXPECT_EQ(nodes[1]->delivered[0], "precious");
}

TEST_F(GroupFixture, MemberCrashDetectedAndResetYieldsSmallerGroup) {
  boot(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  cluster.crash(MachineId{2});
  sim.run_until(sim::sec(2));
  EXPECT_GE(nodes[0]->failures_seen, 1);
  GroupInfo gi0 = nodes[0]->gm->info();
  GroupInfo gi1 = nodes[1]->gm->info();
  EXPECT_EQ(gi0.state, MemberState::normal);
  EXPECT_EQ(gi0.members.size(), 2u);
  EXPECT_EQ(gi1.members.size(), 2u);
  EXPECT_EQ(gi0.incarnation, gi1.incarnation);
  // The rebuilt group still orders messages.
  send_from(1, {"after-reset"});
  sim.run_until(sim::sec(3));
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  ASSERT_FALSE(nodes[0]->delivered.empty());
  EXPECT_EQ(nodes[0]->delivered.back(), "after-reset");
}

TEST_F(GroupFixture, SequencerCrashElectsNewSequencerAndKeepsOrder) {
  boot(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  send_from(1, {"before1", "before2"});
  sim.run_until(sim::msec(600));
  cluster.crash(MachineId{0});  // the sequencer
  sim.run_until(sim::sec(3));
  GroupInfo gi1 = nodes[1]->gm->info();
  GroupInfo gi2 = nodes[2]->gm->info();
  EXPECT_EQ(gi1.state, MemberState::normal);
  EXPECT_EQ(gi1.members.size(), 2u);
  EXPECT_EQ(gi1.sequencer, gi2.sequencer);
  EXPECT_NE(gi1.sequencer, MachineId{0});
  send_from(2, {"after"});
  sim.run_until(sim::sec(5));
  // Survivors agree on the full history including pre-crash messages.
  EXPECT_EQ(nodes[1]->delivered, nodes[2]->delivered);
  std::vector<std::string> expect{"before1", "before2", "after"};
  EXPECT_EQ(nodes[1]->delivered, expect);
}

TEST_F(GroupFixture, PacketLossRepairedByRetransmission) {
  // Tolerant failure detection: this test exercises the retransmission
  // path, not reset (sustained 25% loss would otherwise look like crashes).
  miss_limit = 12;
  boot(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  cluster.net().set_drop_prob(0.25);
  std::vector<Status> results;
  send_from(1, {"l1", "l2", "l3", "l4", "l5"}, sim::msec(30), &results);
  sim.run_until(sim::sec(2));
  cluster.net().set_drop_prob(0.0);
  sim.run_until(sim::sec(6));  // heartbeat-driven repair
  // All members converge on an identical sequence containing every
  // successfully committed message.
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  EXPECT_EQ(nodes[0]->delivered, nodes[2]->delivered);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].is_ok()) {
      auto needle = "l" + std::to_string(i + 1);
      EXPECT_EQ(std::count(nodes[0]->delivered.begin(),
                           nodes[0]->delivered.end(), needle),
                1)
          << needle;
    }
  }
}

TEST_F(GroupFixture, GracefulLeaveShrinksGroup) {
  boot(3);
  sim.run_until(sim::msec(100));
  nodes[2]->machine->spawn("leaver", [&] {
    Status st = nodes[2]->gm->leave(sim::msec(500));
    EXPECT_TRUE(st.is_ok());
  });
  sim.run_until(sim::sec(1));
  EXPECT_EQ(nodes[0]->gm->info().members.size(), 2u);
  EXPECT_EQ(nodes[1]->gm->info().members.size(), 2u);
  EXPECT_EQ(nodes[2]->gm->info().state, MemberState::left);
  send_from(0, {"still-works"});
  sim.run_until(sim::sec(2));
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  EXPECT_EQ(nodes[0]->delivered.back(), "still-works");
  // The departed member received nothing new.
  EXPECT_TRUE(nodes[2]->delivered.empty());
}

TEST_F(GroupFixture, RejoinAfterRestart) {
  boot(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  cluster.crash(MachineId{2});
  sim.run_until(sim::sec(2));  // survivors reset to a 2-group
  cluster.restart(MachineId{2});
  // The restarted machine joins afresh (new driver process).
  Node* node2 = nodes[2].get();
  node2->gm.reset();
  node2->machine->spawn("rejoin", [&, node2] {
    while (!node2->gm) {
      auto res = GroupMember::join(*node2->machine, make_cfg(3));
      if (res.is_ok()) {
        node2->gm = std::move(*res);
      } else {
        sim.sleep_for(sim::msec(20));
      }
    }
    receiver_loop(node2);
  });
  sim.run_until(sim::sec(4));
  EXPECT_EQ(nodes[0]->gm->info().members.size(), 3u);
  node2->delivered.clear();
  send_from(0, {"fresh"});
  sim.run_until(sim::sec(6));
  ASSERT_FALSE(node2->delivered.empty());
  EXPECT_EQ(node2->delivered.back(), "fresh");
}

TEST_F(GroupFixture, InfoTracksKnownLatest) {
  boot(3);
  sim.run_until(sim::msec(100));
  const std::uint64_t before = nodes[1]->gm->info().known_latest;
  send_from(0, {"a", "b"});
  sim.run_until(sim::sec(1));
  const GroupInfo gi = nodes[1]->gm->info();
  EXPECT_GE(gi.known_latest, before + 2);
  EXPECT_EQ(gi.buffered(), 0u);  // receiver loop consumed everything
  EXPECT_EQ(gi.last_delivered, gi.known_latest);
}

TEST_F(GroupFixture, PartitionSplitsIntoIndependentGroupsUntilAppRecovery) {
  // The group layer alone allows both sides of a partition to reset into
  // small groups; refusing service without a majority is the directory
  // service's job (paper Sec. 3.1). This test documents that contract.
  boot(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  cluster.partition({{MachineId{0}}, {MachineId{1}, MachineId{2}}});
  sim.run_until(sim::sec(3));
  GroupInfo gi0 = nodes[0]->gm->info();
  GroupInfo gi1 = nodes[1]->gm->info();
  GroupInfo gi2 = nodes[2]->gm->info();
  EXPECT_EQ(gi0.members.size(), 1u);
  EXPECT_EQ(gi1.members.size(), 2u);
  EXPECT_EQ(gi2.members.size(), 2u);
  // An application checking group size against the universe (3) would
  // refuse operations on side 0 and allow them on side {1,2}.
}

TEST_F(GroupFixture, SendFailsCleanlyWhileGroupFailed) {
  boot(2);
  sim.run_until(sim::msec(100));
  cluster.crash(MachineId{0});
  sim.run_until(sim::sec(1));  // failure detected, no auto reset
  Status st = Status::ok();
  nodes[1]->machine->spawn("sender", [&] {
    st = nodes[1]->gm->send_to_group(to_buffer("x"));
  });
  sim.run_until(sim::sec(3));
  EXPECT_EQ(st.code(), Errc::group_failure);
}

// ----------------------------------------------------------- BB method

struct BbFixture : GroupFixture {
  void boot_bb(int n, int r = 2) {
    GroupConfig cfg = make_cfg(n, r);
    cfg.method = OrderMethod::bb;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      node->machine = &cluster.add_machine("g" + std::to_string(i));
      nodes.push_back(std::move(node));
    }
    for (int i = 0; i < n; ++i) {
      Node* node = nodes[static_cast<std::size_t>(i)].get();
      node->machine->spawn("driver", [this, node, cfg, i] {
        if (i == 0) {
          node->gm = GroupMember::create(*node->machine, cfg);
        } else {
          sim.sleep_for(sim::msec(2 + 2 * i));
          while (!node->gm) {
            auto res = GroupMember::join(*node->machine, cfg);
            if (res.is_ok()) {
              node->gm = std::move(*res);
            } else {
              sim.sleep_for(sim::msec(10));
            }
          }
        }
        receiver_loop(node);
      });
    }
  }
};

TEST_F(BbFixture, BbTotalOrderConcurrentSenders) {
  boot_bb(3);
  sim.run_until(sim::msec(100));
  send_from(0, {"a1", "a2", "a3"});
  send_from(1, {"b1", "b2", "b3"});
  send_from(2, {"c1", "c2", "c3"});
  sim.run_until(sim::sec(2));
  EXPECT_EQ(nodes[0]->delivered.size(), 9u);
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  EXPECT_EQ(nodes[0]->delivered, nodes[2]->delivered);
}

TEST_F(BbFixture, BbFivePacketsPerSend) {
  boot_bb(3);
  sim.run_until(sim::msec(200));
  std::uint64_t before = 0;
  for (auto& node : nodes) before += node->gm->stats().data_packets;
  send_from(1, {"x"});
  sim.run_until(sim::msec(400));
  std::uint64_t after = 0;
  for (auto& node : nodes) after += node->gm->stats().data_packets;
  // bb_data multicast + bb_order multicast + 2 ACK + COMMIT = 5, but the
  // payload crosses the wire only once (vs. twice with PB).
  EXPECT_EQ(after - before, 5u);
}

TEST_F(BbFixture, BbSurvivesPayloadLossViaRetransmission) {
  miss_limit = 12;
  boot_bb(3);
  for (auto& node : nodes) node->auto_reset = true;
  sim.run_until(sim::msec(100));
  cluster.net().set_drop_prob(0.2);
  std::vector<Status> results;
  send_from(1, {"p1", "p2", "p3", "p4"}, sim::msec(40), &results);
  sim.run_until(sim::sec(2));
  cluster.net().set_drop_prob(0.0);
  sim.run_until(sim::sec(8));
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  EXPECT_EQ(nodes[0]->delivered, nodes[2]->delivered);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].is_ok()) {
      auto needle = "p" + std::to_string(i + 1);
      EXPECT_EQ(std::count(nodes[0]->delivered.begin(),
                           nodes[0]->delivered.end(), needle),
                1);
    }
  }
}

TEST_F(GroupFixture, BbFasterThanPbForLargeMessages) {
  // The ref [9] tradeoff: BB transmits a large payload once, PB twice.
  auto send_latency = [](OrderMethod method) {
    sim::Simulator s(77);
    net::Cluster cl(s);
    std::vector<std::unique_ptr<GroupMember>> ms(3);
    GroupConfig cfg;
    cfg.port = kGroupPort;
    cfg.method = method;
    for (int i = 0; i < 3; ++i) {
      cfg.universe.push_back(MachineId{static_cast<std::uint16_t>(i)});
    }
    for (int i = 0; i < 3; ++i) {
      net::Machine& m = cl.add_machine("g" + std::to_string(i));
      m.spawn("drv", [&s, &ms, &m, cfg, i] {
        if (i == 0) {
          ms[0] = GroupMember::create(m, cfg);
        } else {
          s.sleep_for(sim::msec(3 * i));
          while (!ms[static_cast<std::size_t>(i)]) {
            auto r = GroupMember::join(m, cfg);
            if (r.is_ok()) {
              ms[static_cast<std::size_t>(i)] = std::move(*r);
            } else {
              s.sleep_for(sim::msec(10));
            }
          }
        }
        while (true) (void)ms[static_cast<std::size_t>(i)]->receive();
      });
    }
    s.run_for(sim::msec(200));
    sim::Duration total = 0;
    int count = 0;
    cl.machine(MachineId{1}).spawn("send", [&] {
      for (int k = 0; k < 5; ++k) {
        sim::Time t0 = s.now();
        if (ms[1]->send_to_group(Buffer(32 * 1024, 7)).is_ok()) {
          total += s.now() - t0;
          count++;
        }
      }
    });
    s.run_for(sim::sec(5));
    return count > 0 ? total / count : sim::kTimeMax;
  };
  const sim::Duration pb = send_latency(OrderMethod::pb);
  const sim::Duration bb = send_latency(OrderMethod::bb);
  // 32 KB at 0.8 us/byte is ~26 ms per transmission; BB saves one.
  EXPECT_LT(bb + sim::msec(15), pb)
      << "pb=" << sim::to_ms(pb) << "ms bb=" << sim::to_ms(bb) << "ms";
}

TEST_F(GroupFixture, ZeroResilienceCommitsWithoutAcks) {
  boot(3, /*r=*/0);
  sim.run_until(sim::msec(100));
  sim::Time t0 = 0, t1 = 0;
  nodes[1]->machine->spawn("sender", [&] {
    t0 = sim.now();
    ASSERT_TRUE(nodes[1]->gm->send_to_group(to_buffer("fast")).is_ok());
    t1 = sim.now();
  });
  sim.run_until(sim::sec(1));
  // r=0: REQ + COMMIT, no ack wait: roughly one round trip.
  EXPECT_GT(t1, t0);
  EXPECT_LE(t1 - t0, sim::msec(5));
  sim.run_until(sim::sec(2));
  EXPECT_EQ(nodes[0]->delivered, nodes[2]->delivered);
}

}  // namespace
}  // namespace amoeba::group

// End-to-end causal tracing: one client-visible directory operation must
// leave exactly one connected span tree in the cluster trace, the tree's
// wire spans must reproduce the paper's Sec. 3.1 packet counts (RPC = 3
// network spans; sequencer-origin group send = 1 multicast + N-1 acks;
// member-origin = 5), critical-path attribution must account for every
// microsecond of the measured latency, and two same-seed runs must emit
// identical span-id sequences.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "dir/client.h"
#include "harness/workload.h"
#include "obs/critical_path.h"

namespace amoeba {
namespace {

/// One lookup + one update against a fresh testbed; returns the span tree
/// of each traced client op, keyed by the root span's name.
std::map<std::string, obs::TraceTree> run_one_of_each(harness::Flavor flavor,
                                                      std::uint64_t seed,
                                                      harness::Testbed& bed) {
  EXPECT_TRUE(bed.wait_ready());
  bool done = false;
  net::Machine& cm = bed.client(0);
  cm.spawn("ops", [&] {
    rpc::RpcClient rpc(cm);
    dir::DirClient dc(rpc, bed.dir_port());
    Result<cap::Capability> dcap = dc.create_dir({"c"});
    for (int i = 0; i < 40 && !dcap.is_ok(); ++i) {
      bed.sim().sleep_for(sim::msec(100));
      dcap = dc.create_dir({"c"});
    }
    ASSERT_TRUE(dcap.is_ok());
    // One capability column: a zero-column row reads back as not_found.
    ASSERT_TRUE(dc.append_row(*dcap, "e0", {*dcap}).is_ok());
    ASSERT_TRUE(dc.lookup(*dcap, "e0").is_ok());
    done = true;
  });
  const sim::Time deadline = bed.sim().now() + sim::sec(60);
  while (!done && bed.sim().now() < deadline) bed.sim().run_for(sim::msec(100));
  EXPECT_TRUE(done) << harness::flavor_name(flavor) << " seed " << seed;
  bed.sim().run_for(sim::sec(2));  // drain replica persists into the trace

  std::map<std::string, obs::TraceTree> trees;
  const std::vector<obs::TraceEvent> events = bed.trace().events();
  for (std::uint64_t id : obs::trace_ids(events)) {
    obs::TraceTree t = obs::build_tree(events, id);
    if (t.root == obs::TraceTree::kNone) continue;
    const obs::TraceEvent& root = t.spans[t.root];
    if (std::strcmp(root.cat, "dir") != 0) continue;
    trees.emplace(root.name, std::move(t));
  }
  return trees;
}

std::size_t count_named(const obs::TraceTree& t,
                        std::initializer_list<const char*> names) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    if (t.depth_of[i] == 0) continue;
    for (const char* name : names) {
      if (std::strcmp(t.spans[i].name, name) == 0) ++n;
    }
  }
  return n;
}

/// Network spans below the first span labelled (cat, name), excluding any
/// nested inside an RPC transaction — i.e. the wire packets the protocol
/// itself sent, not the storage RPCs a replica issued while applying.
std::size_t packets_under(const obs::TraceTree& t, const char* cat,
                          const char* name) {
  std::size_t target = obs::TraceTree::kNone;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    if (std::strcmp(t.spans[i].cat, cat) == 0 &&
        std::strcmp(t.spans[i].name, name) == 0) {
      target = i;
      break;
    }
  }
  if (target == obs::TraceTree::kNone) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    if (t.spans[i].leg != obs::Leg::network) continue;
    for (std::size_t j = t.parent_of[i]; j != obs::TraceTree::kNone;
         j = t.parent_of[j]) {
      if (std::strcmp(t.spans[j].cat, "rpc") == 0) break;
      if (j == target) {
        ++n;
        break;
      }
    }
  }
  return n;
}

void check_flavor(harness::Flavor flavor, std::uint64_t seed) {
  SCOPED_TRACE(harness::flavor_name(flavor));
  harness::Testbed bed({.flavor = flavor, .clients = 1, .seed = seed});
  auto trees = run_one_of_each(flavor, seed, bed);
  ASSERT_TRUE(trees.count("lookup_set") == 1 && trees.count("append_row") == 1);

  for (const char* op : {"lookup_set", "append_row"}) {
    SCOPED_TRACE(op);
    const obs::TraceTree& t = trees.at(op);
    // One connected tree: a unique root and no span whose parent is
    // missing — every hop of the operation joined the same trace.
    EXPECT_TRUE(t.connected())
        << t.num_roots << " roots, " << t.orphans << " orphans";
    // Every microsecond of the measured latency is attributed to a leg:
    // the per-leg sums equal the root duration exactly, nothing
    // unexplained (gaps count as queueing by construction).
    const obs::LegBreakdown bd = obs::critical_path(t);
    EXPECT_EQ(bd.leg_sum(), bd.total);
    EXPECT_GT(bd.of(obs::Leg::network), 0);
  }

  // Sec. 3.1, lookup: "an RPC in Amoeba requires only 3 messages" —
  // request, reply, piggybacked ack. A read never touches stable storage.
  const obs::TraceTree& lk = trees.at("lookup_set");
  EXPECT_EQ(lk.count(obs::Leg::network), 3u);
  EXPECT_EQ(lk.count(obs::Leg::disk), 0u);
  EXPECT_EQ(lk.count(obs::Leg::nvram), 0u);

  // Sec. 3.1, update: the group protocol's share of the tree is 1 ACCEPT
  // multicast + (N-1) acks when the sequencer initiated (3 spans), or
  // REQ + ACCEPT + 2 ACK + COMMIT (5) from an ordinary member.
  const obs::TraceTree& up = trees.at("append_row");
  const bool is_group = flavor == harness::Flavor::group ||
                        flavor == harness::Flavor::group_nvram;
  if (is_group) {
    const std::size_t group_spans = packets_under(up, "group", "send");
    const bool member_origin = count_named(up, {"req"}) != 0;
    EXPECT_EQ(group_spans, member_origin ? 5u : 3u);
  }
  switch (flavor) {
    case harness::Flavor::group:
      EXPECT_GE(up.count(obs::Leg::disk), 2u);  // bullet copy + admin block
      EXPECT_EQ(up.count(obs::Leg::nvram), 0u);
      break;
    case harness::Flavor::group_nvram:
      EXPECT_EQ(up.count(obs::Leg::disk), 0u);
      EXPECT_GE(up.count(obs::Leg::nvram), 1u);  // one log append per replica
      break;
    case harness::Flavor::rpc:
      // Client RPC + intent RPC + one storage RPC per disk op.
      EXPECT_EQ(count_named(up, {"request"}), 4u);
      EXPECT_GE(up.count(obs::Leg::disk), 2u);  // intent block + copy
      break;
    case harness::Flavor::rpc_nvram:
      EXPECT_EQ(count_named(up, {"request"}), 2u);  // client + intent
      EXPECT_EQ(up.count(obs::Leg::disk), 0u);
      EXPECT_GE(up.count(obs::Leg::nvram), 1u);
      break;
    case harness::Flavor::nfs:
      EXPECT_EQ(up.count(obs::Leg::network), 3u);  // one plain RPC
      EXPECT_EQ(up.count(obs::Leg::disk), 1u);     // one local block write
      break;
  }
}

TEST(SpanTree, GroupOpsFormOneConnectedTree) {
  check_flavor(harness::Flavor::group, 5);
}
TEST(SpanTree, GroupNvramOpsFormOneConnectedTree) {
  check_flavor(harness::Flavor::group_nvram, 5);
}
TEST(SpanTree, RpcOpsFormOneConnectedTree) {
  check_flavor(harness::Flavor::rpc, 5);
}
TEST(SpanTree, RpcNvramOpsFormOneConnectedTree) {
  check_flavor(harness::Flavor::rpc_nvram, 5);
}
TEST(SpanTree, NfsOpsFormOneConnectedTree) {
  check_flavor(harness::Flavor::nfs, 5);
}

// Span ids come from seed-driven counters, never addresses or wall clock:
// re-running the identical scenario must reproduce the identical id
// sequence (and therefore byte-identical trace exports and reports).
TEST(TraceDeterminism, SameSeedRunsEmitIdenticalSpanIdSequences) {
  using Row = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::string, sim::Time>;
  auto collect = [](harness::Flavor flavor) {
    harness::Testbed bed({.flavor = flavor, .clients = 1, .seed = 77});
    auto trees = run_one_of_each(flavor, 77, bed);
    EXPECT_FALSE(trees.empty());
    std::vector<Row> rows;
    for (const obs::TraceEvent& ev : bed.trace().events()) {
      if (ev.span == 0) continue;
      rows.emplace_back(ev.trace, ev.span, ev.parent, ev.name, ev.ts);
    }
    return rows;
  };
  for (harness::Flavor f :
       {harness::Flavor::group, harness::Flavor::rpc_nvram}) {
    SCOPED_TRACE(harness::flavor_name(f));
    const auto a = collect(f);
    const auto b = collect(f);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace amoeba
